//! Property tests of the blocked im2col kernels: for any conv/linear shape
//! — strides, padding, groups, tile-size non-divisible extents, any worker
//! count — the fast kernels must be **bit-identical** to the naive
//! loop-nest oracles in `ola_nn::network`. This is the contract that lets
//! `Network::forward` switch to the fast path without perturbing a single
//! golden report.

use ola_nn::kernels;
use ola_nn::network::{conv2d, conv2d_grouped, linear_dense, linear_rowgen};
use ola_nn::synth::SyntheticMatrix;
use ola_tensor::init::{uniform_tensor, HeavyTailed};
use ola_tensor::{Shape4, Tensor};
use proptest::prelude::*;

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn bias_vec(c: usize, seed: u64, with_bias: bool) -> Option<Vec<f32>> {
    with_bias.then(|| {
        uniform_tensor(Shape4::new(1, 1, 1, c), -0.5, 0.5, seed)
            .as_slice()
            .to_vec()
    })
}

proptest! {
    /// Dense convolution: any geometry, any worker count.
    #[test]
    fn conv2d_fast_is_bit_exact(
        geom in (1usize..=5, 0usize..=10, 0usize..=10),
        chans in (1usize..=2, 1usize..=4, 1usize..=5),
        stride in 1usize..=3,
        pad in 0usize..=2,
        jobs in 1usize..=5,
        with_bias in prop::bool::ANY,
        seed in 0u64..1 << 48,
    ) {
        let (k, h_extra, w_extra) = geom;
        let (n, cin, cout) = chans;
        let (h, w) = (k + h_extra, k + w_extra);
        let x = uniform_tensor(Shape4::new(n, cin, h, w), -1.0, 1.0, seed);
        let wt = uniform_tensor(Shape4::new(cout, cin, k, k), -0.3, 0.3, seed ^ 0xFEED);
        let bias = bias_vec(cout, seed ^ 0xB1A5, with_bias);
        let naive = conv2d(&x, &wt, bias.as_deref(), stride, pad);
        let fast = kernels::conv2d_fast(&x, &wt, bias.as_deref(), stride, pad, jobs);
        prop_assert_eq!(bits(&naive), bits(&fast));
    }

    /// Grouped convolution: the per-group gather/scatter must not disturb
    /// values or their order either.
    #[test]
    fn conv2d_grouped_fast_is_bit_exact(
        geom in (1usize..=4, 0usize..=8, 0usize..=8),
        chans in (1usize..=2, 1usize..=3, 1usize..=3, 1usize..=3),
        stride in 1usize..=3,
        pad in 0usize..=2,
        jobs in 1usize..=5,
        with_bias in prop::bool::ANY,
        seed in 0u64..1 << 48,
    ) {
        let (k, h_extra, w_extra) = geom;
        let (n, groups, cig, cog) = chans;
        let (h, w) = (k + h_extra, k + w_extra);
        let (cin, cout) = (groups * cig, groups * cog);
        let x = uniform_tensor(Shape4::new(n, cin, h, w), -1.0, 1.0, seed);
        let wt = uniform_tensor(Shape4::new(cout, cig, k, k), -0.3, 0.3, seed ^ 0xFEED);
        let bias = bias_vec(cout, seed ^ 0xB1A5, with_bias);
        let naive = conv2d_grouped(&x, &wt, bias.as_deref(), stride, pad, groups);
        let fast =
            kernels::conv2d_grouped_fast(&x, &wt, bias.as_deref(), stride, pad, groups, jobs);
        prop_assert_eq!(bits(&naive), bits(&fast));
    }

    /// Dense linear: output-feature tiles never split one output's
    /// reduction, so any (out_features, jobs) pair — including tile sizes
    /// that do not divide out_features — is bit-exact.
    #[test]
    fn linear_fast_is_bit_exact(
        shape in (1usize..=3, 1usize..=96, 1usize..=40),
        jobs in 1usize..=5,
        with_bias in prop::bool::ANY,
        seed in 0u64..1 << 48,
    ) {
        let (n, in_features, out_features) = shape;
        let x = uniform_tensor(Shape4::new(n, in_features, 1, 1), -1.0, 1.0, seed);
        let wt = uniform_tensor(
            Shape4::new(1, 1, out_features, in_features),
            -0.3,
            0.3,
            seed ^ 0xFEED,
        );
        let bias = bias_vec(out_features, seed ^ 0xB1A5, with_bias);
        let naive = linear_dense(&x, &wt, bias.as_deref(), out_features);
        let fast = kernels::linear_fast(&x, &wt, bias.as_deref(), out_features, jobs);
        prop_assert_eq!(bits(&naive), bits(&fast));
    }

    /// Row-generated linear: the fast path regenerates rows inside worker
    /// tiles; the values and the dot order must match the serial oracle.
    #[test]
    fn linear_rowgen_fast_is_bit_exact(
        shape in (1usize..=2, 1usize..=80, 1usize..=30),
        sparsity in 0.0f64..1.0,
        jobs in 1usize..=5,
        with_bias in prop::bool::ANY,
        seed in 0u64..1 << 48,
    ) {
        let (n, in_features, out_features) = shape;
        let x = uniform_tensor(Shape4::new(n, in_features, 1, 1), -1.0, 1.0, seed);
        let gen = SyntheticMatrix::new(
            out_features,
            in_features,
            HeavyTailed::default(),
            sparsity,
            seed ^ 0xFEED,
        );
        let bias = bias_vec(out_features, seed ^ 0xB1A5, with_bias);
        let naive = linear_rowgen(&x, &gen, bias.as_deref(), out_features);
        let fast = kernels::linear_rowgen_fast(&x, &gen, bias.as_deref(), out_features, jobs);
        prop_assert_eq!(bits(&naive), bits(&fast));
    }

    /// Worker count is invisible: 1 worker and N workers produce the same
    /// bytes (the scatter step reassembles tiles in deterministic order).
    #[test]
    fn worker_count_is_invisible(
        geom in (1usize..=4, 0usize..=9),
        chans in (1usize..=4, 1usize..=6),
        jobs in 2usize..=8,
        seed in 0u64..1 << 48,
    ) {
        let (k, h_extra) = geom;
        let (cin, cout) = chans;
        let h = k + h_extra;
        let x = uniform_tensor(Shape4::new(1, cin, h, h), -1.0, 1.0, seed);
        let wt = uniform_tensor(Shape4::new(cout, cin, k, k), -0.3, 0.3, seed ^ 0xFEED);
        let one = kernels::conv2d_fast(&x, &wt, None, 1, 1, 1);
        let many = kernels::conv2d_fast(&x, &wt, None, 1, 1, jobs);
        prop_assert_eq!(bits(&one), bits(&many));
    }
}
