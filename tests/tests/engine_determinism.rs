//! The engine's core guarantee: reports are byte-identical at any worker
//! count. A serial run and a 4-worker run of the same experiment subset
//! must produce the same strings in the same order, because every
//! experiment seeds its own RNG streams and shared preparation is memoized
//! by value-determining keys — scheduling order can't leak into output.

use ola_harness::engine::run_suite_collect;

/// Fast experiments covering the cheap analytic reports (`table1`,
/// `fig17`) and the cache-heavy AlexNet figures (`fig14`, `fig18`).
const SUBSET: &[&str] = &["table1", "fig14", "fig17", "fig18"];

#[test]
fn reports_are_byte_identical_across_job_counts() {
    let serial = run_suite_collect(SUBSET, true, 1);
    let parallel = run_suite_collect(SUBSET, true, 4);

    assert_eq!(serial.len(), SUBSET.len());
    assert_eq!(parallel.len(), SUBSET.len());
    for (i, name) in SUBSET.iter().enumerate() {
        assert!(!serial[i].is_empty(), "{name} produced an empty report");
        assert_eq!(
            serial[i], parallel[i],
            "{name}: --jobs 1 and --jobs 4 reports differ"
        );
    }
}

#[test]
fn repeated_runs_are_stable_within_a_process() {
    // Same subset again: everything is now cache-resident, and the reports
    // must still match a fresh serial run exactly.
    let again = run_suite_collect(SUBSET, true, 2);
    let reference = run_suite_collect(SUBSET, true, 1);
    assert_eq!(again, reference);
}
