//! Process-wide cache behavior observed through real figure runs: two
//! experiments that ask for the same `(network, scale, policy)` must share
//! one synthesis and one extraction.
//!
//! This file holds a single `#[test]` on purpose — it resets and inspects
//! the global [`ola_harness::prep::PrepCache`], and other tests in the same
//! binary would race it. Integration-test binaries are separate processes,
//! so the other suites are unaffected.

use ola_harness::prep::PrepCache;

#[test]
fn two_figures_share_one_preparation() {
    let cache = PrepCache::global();
    cache.reset();

    // fig18 and fig19 both ask for AlexNet at the fast scale under the
    // standard OLAccel16 policy — the exact same cache keys.
    let r18 = ola_harness::run_experiment("fig18", true);
    let after_first = cache.stats();
    assert_eq!(
        after_first.prepared_misses, 1,
        "first figure should synthesize exactly one network"
    );
    assert_eq!(
        after_first.workload_misses, 1,
        "first figure should extract exactly one workload set"
    );

    let r19 = ola_harness::run_experiment("fig19", true);
    let after_second = cache.stats();
    assert_eq!(
        after_second.prepared_misses, 1,
        "second figure must reuse the prepared network, not rebuild it"
    );
    assert!(
        after_second.prepared_hits >= 1,
        "second figure should register a prepared-network cache hit"
    );
    assert_eq!(
        after_second.workload_misses, 1,
        "second figure must reuse the extracted workloads"
    );
    assert!(
        after_second.workload_hits >= 1,
        "second figure should register a workload-set cache hit"
    );

    assert!(!r18.is_empty() && !r19.is_empty());
}
