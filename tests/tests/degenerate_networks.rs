//! Robustness tests: the whole pipeline (synthesis -> forward -> workload
//! extraction -> all three accelerator models) must survive degenerate
//! network shapes — single channels, non-multiple-of-16 channels, huge
//! kernels, tiny feature maps — without panicking or producing nonsense.

use ola_baselines::{EyerissSim, ZenaSim};
use ola_core::OlAccelSim;
use ola_energy::config::MemoryConfig;
use ola_energy::{ComparisonMode, TechParams};
use ola_nn::synth::{synthesize_params, SynthConfig};
use ola_nn::{Conv2dSpec, LinearSpec, Network, Op};
use ola_sim::workload::extract;
use ola_sim::QuantPolicy;
use ola_tensor::init::uniform_tensor;
use ola_tensor::{ConvGeometry, Shape4};

fn run_all(net: &Network) {
    let params = synthesize_params(net, &SynthConfig::default());
    let input = uniform_tensor(net.input_shape(), -1.0, 1.0, 99);
    let policy = QuantPolicy::olaccel16("degenerate");
    let ws = extract(net, &params, &input, &policy);
    let tech = TechParams::default();
    let mem = MemoryConfig::for_network("degenerate", ComparisonMode::Bits16);
    for l in &ws.layers {
        let e = EyerissSim::new(tech, ComparisonMode::Bits16).simulate_layer(l, &mem);
        let z = ZenaSim::new(tech, ComparisonMode::Bits16).simulate_layer(l, &mem);
        let o = OlAccelSim::new(tech, ComparisonMode::Bits16).simulate_layer(l, &mem);
        for (label, r) in [("eyeriss", &e), ("zena", &z), ("olaccel", &o)] {
            assert!(r.cycles > 0, "{label} {} produced zero cycles", l.name);
            assert!(
                r.energy.total() > 0.0,
                "{label} {} produced zero energy",
                l.name
            );
            assert!(
                r.energy.total().is_finite(),
                "{label} {} non-finite energy",
                l.name
            );
        }
    }
}

#[test]
fn single_channel_conv() {
    let mut net = Network::new("degenerate", Shape4::new(1, 1, 8, 8));
    net.add(
        "conv",
        Op::Conv(Conv2dSpec::new(1, 1, ConvGeometry::new(3, 1, 1))),
        &[0],
    );
    run_all(&net);
}

#[test]
fn channels_not_multiple_of_16() {
    let mut net = Network::new("degenerate", Shape4::new(1, 17, 6, 6));
    let c = net.add(
        "conv",
        Op::Conv(Conv2dSpec::new(17, 23, ConvGeometry::new(3, 1, 1))),
        &[0],
    );
    let r = net.add("relu", Op::ReLU, &[c]);
    net.add(
        "conv2",
        Op::Conv(Conv2dSpec::new(23, 5, ConvGeometry::new(1, 1, 0))),
        &[r],
    );
    run_all(&net);
}

#[test]
fn kernel_as_big_as_input() {
    let mut net = Network::new("degenerate", Shape4::new(1, 4, 5, 5));
    net.add(
        "conv",
        Op::Conv(Conv2dSpec::new(4, 8, ConvGeometry::new(5, 1, 0))),
        &[0],
    );
    run_all(&net);
}

#[test]
fn one_by_one_feature_map_fc() {
    let mut net = Network::new("degenerate", Shape4::new(1, 32, 1, 1));
    let r = net.add("relu", Op::ReLU, &[0]);
    net.add("fc", Op::Linear(LinearSpec::new(32, 7)), &[r]);
    run_all(&net);
}

#[test]
fn strided_downsampling_chain() {
    let mut net = Network::new("degenerate", Shape4::new(1, 3, 16, 16));
    let mut prev = 0;
    let mut ch = 3;
    for (i, s) in [2usize, 2, 2].iter().enumerate() {
        let c = net.add(
            format!("conv{i}"),
            Op::Conv(Conv2dSpec::new(ch, ch * 2, ConvGeometry::new(3, *s, 1))),
            &[prev],
        );
        prev = net.add(format!("relu{i}"), Op::ReLU, &[c]);
        ch *= 2;
    }
    run_all(&net);
}
