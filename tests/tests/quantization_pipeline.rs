//! Integration of the quantization pipeline: calibrate on a network, build
//! the hardware encodings, verify the numerical path end to end.

use ola_nn::synth::{synthesize_params, weight_values, SynthConfig};
use ola_nn::zoo::{self, ZooConfig};
use ola_quant::calibrate::calibrate_activations;
use ola_quant::chunks::{decode_buffer, encode_buffer, QuantizedWeight, CHUNK_WEIGHTS};
use ola_quant::metrics::sqnr_db;
use ola_quant::outlier::OutlierQuantizer;
use ola_tensor::init::uniform_tensor;

#[test]
fn calibrated_quantizers_hit_target_ratio() {
    let cfg = ZooConfig {
        spatial_scale: 8,
        include_classifier: false,
        batch: 1,
    };
    let net = zoo::alexnet(&cfg);
    let params = synthesize_params(&net, &SynthConfig::for_network("alexnet"));
    let samples: Vec<_> = (0..2)
        .map(|i| uniform_tensor(net.input_shape(), -1.0, 1.0, 200 + i))
        .collect();
    let cals = calibrate_activations(&net, &params, &samples, 0.03);
    for cal in &cals {
        // Nonzero ratio should be near target; effective at or below it.
        assert!(
            (cal.nonzero_outlier_ratio - 0.03).abs() < 0.015,
            "nonzero ratio {}",
            cal.nonzero_outlier_ratio
        );
        assert!(cal.effective_outlier_ratio <= cal.nonzero_outlier_ratio + 1e-9);
    }
}

#[test]
fn full_weight_path_roundtrip_preserves_fidelity() {
    // Take real (synthetic-trained-like) conv weights, quantize outlier-
    // aware, encode to hardware chunks, decode, dequantize, and check the
    // result matches the direct fake-quantization to the quantizer's own
    // resolution.
    let cfg = ZooConfig {
        spatial_scale: 8,
        include_classifier: false,
        batch: 1,
    };
    let net = zoo::alexnet(&cfg);
    let params = synthesize_params(&net, &SynthConfig::for_network("alexnet"));
    let conv2 = net.nodes().iter().position(|n| n.name == "conv2").unwrap();
    let weights: Vec<f32> = weight_values(&params, conv2)
        .into_iter()
        .take(4096)
        .collect();
    let nonzero: Vec<f32> = weights.iter().copied().filter(|&v| v != 0.0).collect();

    let quant = OutlierQuantizer::fit(&nonzero, 0.035, 4, 8);
    let encoded = quant.quantize(&nonzero);

    // Pack into hardware chunks.
    let mut hw: Vec<QuantizedWeight> = encoded
        .levels
        .iter()
        .map(|&l| QuantizedWeight::normal(l))
        .collect();
    for &(i, level) in &encoded.outliers {
        hw[i] = QuantizedWeight::outlier(level);
    }
    let chunks = encode_buffer(&hw);
    assert!(chunks.len() >= nonzero.len().div_ceil(CHUNK_WEIGHTS));

    // Decode and compare values.
    let decoded = decode_buffer(&chunks, nonzero.len());
    assert_eq!(decoded, hw, "hardware chunk round trip must be lossless");

    // Reconstructed reals track the originals well (fine grid on the bulk).
    let restored: Vec<f32> = decoded
        .iter()
        .map(|w| {
            if w.outlier {
                quant.high().dequantize(w.level)
            } else {
                quant.low().dequantize(w.level)
            }
        })
        .collect();
    let sqnr = sqnr_db(&nonzero, &restored);
    assert!(sqnr > 15.0, "end-to-end SQNR only {sqnr} dB");
}

#[test]
fn vgg_and_resnet_quantize_cleanly() {
    for name in ["vgg16", "resnet18"] {
        let cfg = ZooConfig {
            spatial_scale: 8,
            include_classifier: false,
            batch: 1,
        };
        let net = zoo::by_name(name, &cfg);
        let params = synthesize_params(&net, &SynthConfig::for_network(name));
        for &node in net.compute_nodes().iter().take(4) {
            let w: Vec<f32> = weight_values(&params, node)
                .into_iter()
                .filter(|&v| v != 0.0)
                .collect();
            if w.is_empty() {
                continue;
            }
            let q = OutlierQuantizer::fit(&w, 0.03, 4, 8);
            let restored = q.fake_quantize(&w);
            assert!(sqnr_db(&w, &restored) > 12.0, "{name} node {node}");
        }
    }
}
