//! Integration of the quantization pipeline: calibrate on a network, build
//! the hardware encodings, verify the numerical path end to end.

use ola_nn::synth::{synthesize_params, weight_values, SynthConfig};
use ola_nn::zoo::{self, ZooConfig};
use ola_quant::calibrate::calibrate_activations;
use ola_quant::chunks::{decode_buffer, encode_buffer, QuantizedWeight, CHUNK_WEIGHTS};
use ola_quant::metrics::sqnr_db;
use ola_quant::outlier::OutlierQuantizer;
use ola_tensor::init::uniform_tensor;

#[test]
fn calibrated_quantizers_hit_target_ratio() {
    let cfg = ZooConfig {
        spatial_scale: 8,
        include_classifier: false,
        batch: 1,
    };
    let net = zoo::alexnet(&cfg);
    let params = synthesize_params(&net, &SynthConfig::for_network("alexnet"));
    let samples: Vec<_> = (0..2)
        .map(|i| uniform_tensor(net.input_shape(), -1.0, 1.0, 200 + i))
        .collect();
    let cals = calibrate_activations(&net, &params, &samples, 0.03);
    for cal in &cals {
        // Nonzero ratio should be near target; effective at or below it.
        assert!(
            (cal.nonzero_outlier_ratio - 0.03).abs() < 0.015,
            "nonzero ratio {}",
            cal.nonzero_outlier_ratio
        );
        assert!(cal.effective_outlier_ratio <= cal.nonzero_outlier_ratio + 1e-9);
    }
}

#[test]
fn full_weight_path_roundtrip_preserves_fidelity() {
    // Take real (synthetic-trained-like) conv weights, quantize outlier-
    // aware, encode to hardware chunks, decode, dequantize, and check the
    // result matches the direct fake-quantization to the quantizer's own
    // resolution.
    let cfg = ZooConfig {
        spatial_scale: 8,
        include_classifier: false,
        batch: 1,
    };
    let net = zoo::alexnet(&cfg);
    let params = synthesize_params(&net, &SynthConfig::for_network("alexnet"));
    let conv2 = net.nodes().iter().position(|n| n.name == "conv2").unwrap();
    let weights: Vec<f32> = weight_values(&params, conv2)
        .into_iter()
        .take(4096)
        .collect();
    let nonzero: Vec<f32> = weights.iter().copied().filter(|&v| v != 0.0).collect();

    let quant = OutlierQuantizer::fit(&nonzero, 0.035, 4, 8);
    let encoded = quant.quantize(&nonzero);

    // Pack into hardware chunks.
    let mut hw: Vec<QuantizedWeight> = encoded
        .levels
        .iter()
        .map(|&l| QuantizedWeight::normal(l))
        .collect();
    for &(i, level) in &encoded.outliers {
        hw[i] = QuantizedWeight::outlier(level);
    }
    let chunks = encode_buffer(&hw);
    assert!(chunks.len() >= nonzero.len().div_ceil(CHUNK_WEIGHTS));

    // Decode and compare values.
    let decoded = decode_buffer(&chunks, nonzero.len());
    assert_eq!(decoded, hw, "hardware chunk round trip must be lossless");

    // Reconstructed reals track the originals well (fine grid on the bulk).
    let restored: Vec<f32> = decoded
        .iter()
        .map(|w| {
            if w.outlier {
                quant.high().dequantize(w.level)
            } else {
                quant.low().dequantize(w.level)
            }
        })
        .collect();
    let sqnr = sqnr_db(&nonzero, &restored);
    assert!(sqnr > 15.0, "end-to-end SQNR only {sqnr} dB");
}

#[test]
fn fit_rejects_empty_population() {
    // The fit has no way to place a grid over nothing; the contract is a
    // panic, not a silent degenerate quantizer.
    let result = std::panic::catch_unwind(|| OutlierQuantizer::fit(&[], 0.03, 4, 8));
    assert!(result.is_err(), "fit on an empty slice must panic");
}

#[test]
fn fit_rejects_all_zero_population() {
    // -0.0 counts as magnitude zero: a population of signed zeros has no
    // usable maximum and must be rejected like the empty one.
    let zeros = [0.0f32, -0.0, 0.0, -0.0];
    let result = std::panic::catch_unwind(|| OutlierQuantizer::fit(&zeros, 0.03, 4, 8));
    assert!(result.is_err(), "fit on all-zero values must panic");
    let aligned = std::panic::catch_unwind(|| OutlierQuantizer::fit_aligned(&zeros, 0.03, 4, 8));
    assert!(
        aligned.is_err(),
        "fit_aligned on all-zero values must panic"
    );
}

#[test]
fn nan_input_is_always_an_outlier() {
    // total_cmp orders NaN above +inf, so a NaN that sneaks into the
    // runtime population lands in the high-precision region under any
    // finite calibrated threshold — deterministically, on both the
    // classify and quantize paths.
    let mut values = vec![0.5f32; 63];
    values.push(f32::NAN);
    let calib: Vec<f32> = vec![0.5, 0.6, 0.7, 0.8, 5.0];
    let q = OutlierQuantizer::fit(&calib, 0.2, 4, 8);
    assert!(q.is_outlier(f32::NAN));
    let encoded = q.quantize(&values);
    assert!(
        encoded.outliers.iter().any(|&(i, _)| i == 63),
        "NaN position missing from the outlier list"
    );
    assert_eq!(encoded.outlier_ratio(), 1.0 / 64.0);
}

#[test]
fn negative_zero_stays_in_the_dense_region() {
    let values = [1.0f32, -0.0, 2.0, -0.0, 8.0];
    let q = OutlierQuantizer::fit(&values, 0.2, 4, 8);
    assert!(
        !q.is_outlier(-0.0),
        "-0.0 is magnitude zero, never an outlier"
    );
    let encoded = q.quantize(&values);
    assert!(encoded.outliers.iter().all(|&(i, _)| i == 4));
    assert_eq!(encoded.levels[1], 0);
    assert_eq!(encoded.levels[3], 0);
}

#[test]
fn outlier_ratio_of_an_empty_quantization_is_zero() {
    // quantize(&[]) is a valid no-op; its ratio must come back 0, not NaN.
    let q = OutlierQuantizer::fit(&[1.0, 2.0, 3.0, 4.0], 0.25, 4, 8);
    let empty = q.quantize(&[]);
    assert!(empty.levels.is_empty() && empty.outliers.is_empty());
    assert_eq!(empty.outlier_ratio(), 0.0);
}

#[test]
fn fit_aligned_boundary_ties_classify_identically() {
    // Four values share the threshold magnitude bit-for-bit; the aligned
    // fit must classify them all as outliers, exactly like the plain fit
    // (the tie contract is `|v| >= threshold` under total_cmp for both).
    let values = [2.0f32, -2.0, 2.0, -2.0, 0.5, 0.4, 0.3, 0.2];
    let plain = OutlierQuantizer::fit(&values, 0.25, 4, 8);
    let aligned = OutlierQuantizer::fit_aligned(&values, 0.25, 4, 8);
    assert_eq!(plain.threshold(), 2.0);
    assert_eq!(aligned.threshold(), 2.0);
    for &v in &values {
        assert_eq!(
            plain.is_outlier(v),
            aligned.is_outlier(v),
            "tie split at {v}"
        );
    }
    assert_eq!(aligned.quantize(&values).outliers.len(), 4);
}

#[test]
fn vgg_and_resnet_quantize_cleanly() {
    for name in ["vgg16", "resnet18"] {
        let cfg = ZooConfig {
            spatial_scale: 8,
            include_classifier: false,
            batch: 1,
        };
        let net = zoo::by_name(name, &cfg);
        let params = synthesize_params(&net, &SynthConfig::for_network(name));
        for &node in net.compute_nodes().iter().take(4) {
            let w: Vec<f32> = weight_values(&params, node)
                .into_iter()
                .filter(|&v| v != 0.0)
                .collect();
            if w.is_empty() {
                continue;
            }
            let q = OutlierQuantizer::fit(&w, 0.03, 4, 8);
            let restored = q.fake_quantize(&w);
            assert!(sqnr_db(&w, &restored) > 12.0, "{name} node {node}");
        }
    }
}
