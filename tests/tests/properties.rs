//! Cross-crate property-based tests (proptest) on the reproduction's core
//! invariants: quantizer error bounds, chunk-encoding round trips,
//! dispatch-model agreement, and energy monotonicity.

use ola_core::cost::{chunk_cost, expected_zero_windows, precision_passes};
use ola_core::dispatch::{makespan_analytic, makespan_exact};
use ola_energy::mac::mac_energy;
use ola_energy::sram::Sram;
use ola_energy::TechParams;
use ola_quant::chunks::{decode_buffer, encode_buffer, multi_outlier_probability, QuantizedWeight};
use ola_quant::linear::LinearQuantizer;
use ola_quant::metrics::mse;
use ola_quant::outlier::OutlierQuantizer;
use proptest::prelude::*;

fn nonzero_values() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 32..256)
        .prop_filter("needs a non-zero", |v| v.iter().any(|&x| x.abs() > 1e-3))
}

proptest! {
    #[test]
    fn linear_quantization_error_within_half_step(values in nonzero_values()) {
        let q = LinearQuantizer::fit_symmetric(8, &values).unwrap();
        for &v in &values {
            let r = q.fake_quantize_value(v);
            prop_assert!((r - v).abs() <= q.scale() / 2.0 + 1e-4);
        }
    }

    #[test]
    fn outlier_aware_tracks_or_beats_linear(values in nonzero_values(), ratio in 0.01f64..0.2) {
        // Pointwise the two grids can differ by rounding luck on small
        // populations, so the bound is loose here; the decisive advantage on
        // heavy-tailed data is asserted deterministically in
        // `outlier_aware_wins_on_heavy_tails` below.
        let lin = LinearQuantizer::fit_symmetric(4, &values).unwrap();
        let ola = OutlierQuantizer::fit(&values, ratio, 4, 16);
        let e_lin = mse(&values, &lin.fake_quantize(&values));
        let e_ola = mse(&values, &ola.fake_quantize(&values));
        prop_assert!(e_ola <= e_lin * 2.0 + 1e-9, "ola {e_ola} vs lin {e_lin}");
    }

    #[test]
    fn outlier_quantize_dequantize_structure(values in nonzero_values(), ratio in 0.0f64..0.3) {
        let q = OutlierQuantizer::fit(&values, ratio, 4, 16);
        let encoded = q.quantize(&values);
        prop_assert_eq!(encoded.levels.len(), values.len());
        let decoded = q.dequantize(&encoded);
        prop_assert_eq!(decoded.len(), values.len());
        // Outlier indices are sorted and unique.
        for w in encoded.outliers.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn weight_chunk_buffer_round_trip(
        levels in prop::collection::vec((-127i32..=127, prop::bool::ANY), 1..200)
    ) {
        let weights: Vec<QuantizedWeight> = levels
            .into_iter()
            .map(|(level, big)| {
                if big && level.abs() > 7 {
                    QuantizedWeight::outlier(level)
                } else {
                    QuantizedWeight::normal(level.clamp(-7, 7))
                }
            })
            .collect();
        let chunks = encode_buffer(&weights);
        let decoded = decode_buffer(&chunks, weights.len());
        prop_assert_eq!(decoded, weights);
    }

    #[test]
    fn dispatch_analytic_bounds_exact(
        jobs in prop::collection::vec(0u64..40, 1..400),
        groups in 1usize..64
    ) {
        let exact = makespan_exact(&jobs, groups);
        let total: u64 = jobs.iter().sum();
        let max = *jobs.iter().max().unwrap();
        let approx = makespan_analytic(total as f64, max as f64, groups);
        // Analytic is >= the exact greedy result minus rounding, and within
        // one max-job of it.
        prop_assert!(approx + 1.0 >= exact as f64);
        prop_assert!(approx <= exact as f64 + max as f64 + 1.0);
    }

    #[test]
    fn chunk_cost_monotone_in_nonzeros(nnz in 0u32..16, passes in 1u32..8) {
        let a = chunk_cost(nnz, 0, passes, 0.0);
        let b = chunk_cost(nnz + 1, 0, passes, 0.0);
        prop_assert!(b.run > a.run);
    }

    #[test]
    fn precision_passes_multiplicative(act in 1u32..17, w in 1u32..9) {
        let p = precision_passes(act, w);
        prop_assert_eq!(p, act.div_ceil(4) * w.div_ceil(4));
        prop_assert!(p >= 1);
    }

    #[test]
    fn mac_energy_monotone_in_bits(b1 in 1u32..16, b2 in 1u32..16) {
        let t = TechParams::default();
        let (lo, hi) = (b1.min(b2), b1.max(b2));
        prop_assert!(mac_energy(&t, lo, lo, 24) <= mac_energy(&t, hi, hi, 24));
    }

    #[test]
    fn sram_energy_monotone_in_capacity(c1 in 1u64..1_000_000, c2 in 1u64..1_000_000) {
        let t = TechParams::default();
        let (lo, hi) = (c1.min(c2), c1.max(c2));
        prop_assert!(
            Sram::new(&t, lo).energy_per_bit() <= Sram::new(&t, hi).energy_per_bit()
        );
    }

    #[test]
    fn multi_outlier_probability_monotone(ratio in 0.0f64..0.2, lanes in 2usize..128) {
        let p = multi_outlier_probability(lanes, ratio);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(multi_outlier_probability(lanes + 1, ratio) >= p - 1e-12);
        prop_assert!(multi_outlier_probability(lanes, (ratio + 0.01).min(1.0)) >= p - 1e-12);
    }

    #[test]
    fn expected_zero_windows_bounds(nnz in 0usize..17, w in 1usize..5) {
        let e = expected_zero_windows(16, nnz, w * 2); // w in {2,4,6,8}
        prop_assert!(e >= 0.0);
        prop_assert!(e <= (16 / (w * 2)) as f64);
    }
}

#[test]
fn outlier_aware_wins_on_heavy_tails() {
    use ola_tensor::init::{heavy_tailed_tensor, HeavyTailed};
    use ola_tensor::Shape4;
    let values =
        heavy_tailed_tensor(Shape4::new(1, 1, 100, 200), HeavyTailed::default(), 5).into_vec();
    let lin = LinearQuantizer::fit_symmetric(4, &values).unwrap();
    let ola = OutlierQuantizer::fit(&values, 0.03, 4, 16);
    let e_lin = mse(&values, &lin.fake_quantize(&values));
    let e_ola = mse(&values, &ola.fake_quantize(&values));
    assert!(
        e_ola < e_lin / 4.0,
        "ola {e_ola} should beat lin {e_lin} by >4x"
    );
}
