//! In-process smoke test of the `serve` daemon: two concurrent identical
//! requests coalesce onto one computation and receive byte-identical
//! payloads, the protocol's small commands answer, and `shutdown` drains
//! cleanly and removes the socket.
//!
//! This file holds a single `#[test]` on purpose — the daemon runs
//! experiments through the global [`ola_harness::prep::PrepCache`] and the
//! stats assertions below would race any other test in the same binary.

#![cfg(unix)]

use ola_harness::cli::RunOptions;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

/// Sends one protocol line and returns `(header, payload)`.
fn roundtrip(socket: &std::path::Path, line: &str) -> (String, Vec<u8>) {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header).unwrap();
    let header = header.trim_end().to_string();
    let bytes = header
        .split_whitespace()
        .find_map(|w| w.strip_prefix("bytes="))
        .map(|v| v.parse::<usize>().unwrap())
        .unwrap_or(0);
    let mut payload = vec![0u8; bytes];
    reader.read_exact(&mut payload).unwrap();
    (header, payload)
}

fn header_field<'a>(header: &'a str, key: &str) -> Option<&'a str> {
    header
        .split_whitespace()
        .find_map(|w| w.strip_prefix(key).and_then(|w| w.strip_prefix('=')))
}

#[test]
fn daemon_coalesces_and_shuts_down_cleanly() {
    ola_harness::prep::PrepCache::global().reset();
    let socket = std::env::temp_dir().join(format!("ola-daemon-{}.sock", std::process::id()));
    std::fs::remove_file(&socket).ok();

    let options = RunOptions {
        fast: true,
        jobs: Some(2),
        out_dir: None,
        cache_dir: None,
    };
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || ola_harness::server::serve(&socket, &options))
    };
    let deadline = Instant::now() + Duration::from_secs(30);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "server never bound its socket");
        std::thread::sleep(Duration::from_millis(10));
    }

    let (_, pong) = roundtrip(&socket, "ping");
    assert!(pong.is_empty());

    // Two concurrent identical requests: exactly one computes, both get the
    // same bytes.
    let results: Vec<(String, Vec<u8>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| scope.spawn(|| roundtrip(&socket, "run fig14")))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(
        results[0].1, results[1].1,
        "payloads must be byte-identical"
    );
    assert!(!results[0].1.is_empty());
    let coalesced: Vec<_> = results
        .iter()
        .map(|(h, _)| header_field(h, "coalesced").unwrap())
        .collect();
    assert_eq!(
        coalesced.iter().filter(|c| **c == "0").count(),
        1,
        "exactly one of two identical requests computes, got {coalesced:?}"
    );
    for (h, p) in &results {
        assert_eq!(header_field(h, "name"), Some("fig14"));
        assert_eq!(
            header_field(h, "bytes").unwrap().parse::<usize>().unwrap(),
            p.len()
        );
        assert!(header_field(h, "wall_ms").is_some(), "timing missing: {h}");
    }

    // A replay is served from the memo — still the same bytes, coalesced=1.
    let (h, p) = roundtrip(&socket, "run fig14");
    assert_eq!(p, results[0].1);
    assert_eq!(header_field(&h, "coalesced"), Some("1"));

    // One fig14 run prepares exactly one network, however many clients ask.
    let (_, stats) = roundtrip(&socket, "stats");
    let stats = String::from_utf8(stats).unwrap();
    assert!(
        stats.contains("prepared networks: 1 built"),
        "coalescing failed or stats wrong:\n{stats}"
    );

    // Bad requests answer with `err ...` and leave the daemon serviceable.
    let (h, _) = roundtrip(&socket, "run fig99");
    assert!(h.starts_with("err "), "got: {h}");
    let (h, _) = roundtrip(&socket, "run __panic");
    assert!(h.starts_with("err "), "hidden hooks must be rejected: {h}");
    let (h, _) = roundtrip(&socket, "frobnicate");
    assert!(h.starts_with("err "), "got: {h}");

    let (h, _) = roundtrip(&socket, "shutdown");
    assert_eq!(h, "ok shutting-down");
    let summary = server
        .join()
        .expect("server thread must not panic")
        .expect("serve must exit cleanly");
    assert!(summary.requests >= 8, "got {summary:?}");
    assert_eq!(summary.coalesced, 2, "one racer + one replay: {summary:?}");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}
