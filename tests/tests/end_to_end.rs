//! End-to-end integration tests: zoo network -> synthetic parameters ->
//! quantization -> workload extraction -> all three accelerator models,
//! checking the paper's qualitative claims hold across the stack.

use ola_baselines::{EyerissSim, ZenaSim};
use ola_core::OlAccelSim;
use ola_energy::{ComparisonMode, TechParams};
use ola_harness::prep::{Prepared, SixWay};

fn alexnet_six() -> SixWay {
    let prep = Prepared::new("alexnet", 4);
    SixWay::run(&prep, &TechParams::default())
}

#[test]
fn cycle_ordering_matches_paper() {
    let six = alexnet_six();
    // Fig 11 ordering: OLAccel16 < ZeNA16 < Eyeriss16.
    assert!(six.olaccel16.total_cycles() < six.zena16.total_cycles());
    assert!(six.zena16.total_cycles() < six.eyeriss16.total_cycles());
    // Footnote 5: 16- and 8-bit baselines take identical cycles.
    assert_eq!(six.eyeriss16.total_cycles(), six.eyeriss8.total_cycles());
    assert_eq!(six.zena16.total_cycles(), six.zena8.total_cycles());
}

#[test]
fn energy_ordering_matches_paper() {
    let six = alexnet_six();
    let e = |r: &ola_sim::NetworkRun| r.total_energy().total();
    // OLAccel beats the matching-precision baselines.
    assert!(e(&six.olaccel16) < e(&six.zena16));
    assert!(e(&six.zena16) < e(&six.eyeriss16));
    assert!(e(&six.olaccel8) < e(&six.zena8));
    // 8-bit halves the baselines' memory energy.
    assert!(e(&six.eyeriss8) < 0.6 * e(&six.eyeriss16));
}

#[test]
fn olaccel_energy_gain_mostly_from_memory() {
    // The abstract's claim: the gain comes from DRAM + on-chip memory.
    let six = alexnet_six();
    let z = six.zena16.total_energy();
    let o = six.olaccel16.total_energy();
    let mem_saving = (z.dram - o.dram) + (z.buffer - o.buffer);
    let total_saving = z.total() - o.total();
    assert!(total_saving > 0.0);
    assert!(
        mem_saving > 0.5 * total_saving,
        "memory saving {mem_saving} should dominate total {total_saving}"
    );
}

#[test]
fn first_layer_dominates_olaccel16_cycles() {
    // §V: the 16-bit raw-input first layer takes a disproportionate share.
    let six = alexnet_six();
    let conv1 = six.olaccel16.layers[0].cycles as f64;
    let total = six.olaccel16.total_cycles() as f64;
    let macs_share = 0.25; // conv1 is ~16% of AlexNet MACs at this scale
    assert!(
        conv1 / total > macs_share,
        "conv1 share {:.2} should exceed its MAC share",
        conv1 / total
    );
}

#[test]
fn utilization_totals_are_consistent() {
    let six = alexnet_six();
    for run in six.all() {
        for layer in &run.layers {
            assert_eq!(
                layer.utilization.total(),
                layer.cycles,
                "{} layer {}",
                run.accelerator,
                layer.name
            );
        }
    }
}

#[test]
fn resnet18_first_layer_is_half_of_olaccel16() {
    // Fig 13: C1 occupies ~half of OLAccel16's total on ResNet-18 (8-bit
    // weights x 16-bit acts = 8 passes).
    let prep = Prepared::new("resnet18", 8);
    let (ws16, _) = prep.paper_workloads();
    let run = OlAccelSim::new(TechParams::default(), ComparisonMode::Bits16).simulate(&ws16);
    let conv1 = run.layers[0].cycles as f64;
    let share = conv1 / run.total_cycles() as f64;
    assert!(
        (0.25..0.75).contains(&share),
        "ResNet-18 conv1 share {share:.2} should be near one half"
    );
}

#[test]
fn eyeriss_and_zena_agree_on_total_work() {
    // ZeNA's effective MACs never exceed the dense MAC count Eyeriss runs.
    let prep = Prepared::new("alexnet", 4);
    let (ws16, _) = prep.paper_workloads();
    let tech = TechParams::default();
    let ez = ZenaSim::new(tech, ComparisonMode::Bits16);
    let ee = EyerissSim::new(tech, ComparisonMode::Bits16);
    let mem = ola_energy::config::MemoryConfig::for_network("alexnet", ComparisonMode::Bits16);
    let mut zena_total = 0u64;
    let mut eyeriss_total = 0u64;
    for l in &ws16.layers {
        assert!(ez.effective_macs(l) <= l.macs as f64);
        zena_total += ez.simulate_layer(l, &mem).cycles;
        eyeriss_total += ee.simulate_layer(l, &mem).cycles;
    }
    // Per-layer ZeNA can lose on dense layers (skip-queue imbalance), but
    // across the pruned network skipping must win overall.
    assert!(zena_total < eyeriss_total);
}
