//! Property tests for the process-wide simulation cache (`ola_sim::simcache`):
//! a cached result must be bit-identical to a fresh computation for every
//! accelerator model at any worker count, event records replayed from the
//! cache must still satisfy the cycle conservation law, and the disk tier
//! must round-trip records bit-exactly through `SimResultStore`.

use ola_baselines::{EyerissSim, ZenaSim};
use ola_core::event::{cluster_record, EventConfig};
use ola_core::OlAccelSim;
use ola_energy::config::MemoryConfig;
use ola_energy::{ComparisonMode, TechParams};
use ola_sim::workload::{LayerKind, LayerWorkload, Shape4Ser, WorkloadSet};
use ola_sim::{LayerRun, QuantPolicy, SimCache, SimResultStore, Utilization};
use ola_store::ArtifactStore;
use proptest::prelude::*;
use std::sync::Arc;

/// A synthetic conv layer with caller-chosen chunk data and fractions —
/// the cache contract must hold for *any* workload, not just zoo output.
#[allow(clippy::too_many_arguments)]
fn layer(
    index: usize,
    chunk_nnz: Vec<u8>,
    units: u64,
    act_bits: u32,
    act_zero: f64,
    w_zero: f64,
    multi: f64,
    kernel: usize,
) -> LayerWorkload {
    let chunks = chunk_nnz.len();
    let chunk_zero_quads = chunk_nnz.iter().map(|&n| u8::from(n == 0) * 4).collect();
    LayerWorkload {
        name: format!("prop{index}"),
        index,
        kind: LayerKind::Conv,
        in_shape: Shape4Ser {
            n: 1,
            c: 16,
            h: 4,
            w: chunks.max(1),
        },
        out_shape: Shape4Ser {
            n: 1,
            c: 16,
            h: 4,
            w: chunks.max(1),
        },
        kernel,
        macs: units * 256,
        weight_count: 256 * kernel as u64 * kernel as u64,
        weight_bits: 4,
        act_bits,
        weight_zero_fraction: w_zero,
        act_zero_fraction: act_zero,
        weight_outlier_ratio: 0.03,
        act_outlier_nonzero_ratio: 0.03,
        act_effective_outlier_ratio: 0.02,
        chunk_nnz,
        chunk_zero_quads,
        wchunk_single_fraction: 0.2,
        wchunk_multi_fraction: multi,
        out_zero_fraction: 0.4,
    }
}

/// Strategy: a workload set of 1-5 random layers.
fn workload_set() -> impl Strategy<Value = WorkloadSet> {
    prop::collection::vec(
        (
            (
                prop::collection::vec(0u8..=16, 1..48),
                1u64..3000,
                0usize..3, // index into [4, 8, 16] act bits
            ),
            (
                0.0f64..0.95,
                0.0f64..0.95,
                0.0f64..0.3,
                0usize..3, // index into [1, 3, 11] kernel sizes
            ),
        ),
        1..5,
    )
    .prop_map(|specs| WorkloadSet {
        network: "alexnet".into(),
        policy: QuantPolicy::olaccel16("alexnet"),
        layers: specs
            .into_iter()
            .enumerate()
            .map(|(i, ((nnz, units, bits), (az, wz, multi, k)))| {
                layer(
                    i + 1,
                    nnz,
                    units,
                    [4u32, 8, 16][bits],
                    az,
                    wz,
                    multi,
                    [1usize, 3, 11][k],
                )
            })
            .collect(),
    })
}

/// Bitwise equality of two layer results (floats by exact bit pattern).
fn assert_runs_bitwise_eq(a: &LayerRun, b: &LayerRun) {
    assert_eq!(a.name, b.name);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.utilization, b.utilization);
    assert_eq!(a.energy.dram.to_bits(), b.energy.dram.to_bits());
    assert_eq!(a.energy.buffer.to_bits(), b.energy.buffer.to_bits());
    assert_eq!(a.energy.local.to_bits(), b.energy.local.to_bits());
    assert_eq!(a.energy.logic.to_bits(), b.energy.logic.to_bits());
    assert_eq!(a.chunk_cycle_hist, b.chunk_cycle_hist);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For every accelerator in the six-way comparison, the cached,
    /// layer-parallel `simulate()` path is bit-identical to a fresh
    /// per-layer computation that bypasses the cache — at 1, 2 and 4
    /// workers, whether the cache is cold or warm.
    #[test]
    fn cached_simulation_matches_fresh_for_every_accelerator(ws in workload_set()) {
        let tech = TechParams::default();
        for mode in [ComparisonMode::Bits16, ComparisonMode::Bits8] {
            let mem = MemoryConfig::for_network(&ws.network, mode);
            let ola = OlAccelSim::new(tech, mode);
            let zena = ZenaSim::new(tech, mode);
            let eye = EyerissSim::new(tech, mode);
            for jobs in [1usize, 2, 4] {
                let runs = [ola.simulate_with_jobs(&ws, jobs),
                            zena.simulate_with_jobs(&ws, jobs),
                            eye.simulate_with_jobs(&ws, jobs)];
                for (cached, fresh_fn) in runs.iter().zip([
                    &(|l: &LayerWorkload| ola.simulate_layer(l, &mem))
                        as &dyn Fn(&LayerWorkload) -> LayerRun,
                    &|l| zena.simulate_layer(l, &mem),
                    &|l| eye.simulate_layer(l, &mem),
                ]) {
                    prop_assert_eq!(cached.layers.len(), ws.layers.len());
                    for (c, l) in cached.layers.iter().zip(&ws.layers) {
                        assert_runs_bitwise_eq(c, &fresh_fn(l));
                    }
                }
            }
        }
    }

    /// Event records replayed from the cache satisfy the conservation law
    /// `run + skip + idle == cycles × groups` and are identical to the
    /// first (simulated) result.
    #[test]
    fn conservation_holds_on_event_cache_hits(
        nnz in prop::collection::vec(0u8..=16, 1..32),
        units in 1u64..2000,
        groups in 1usize..8,
        depth in 0u64..6,
    ) {
        let l = layer(1, nnz, units, 4, 0.5, 0.0, 0.1, 1);
        let tuning = ola_core::cost::GroupTuning::default();
        let cfg = EventConfig { groups, accum_pipeline_depth: depth };
        let first = cluster_record(&l, &tuning, &cfg);
        let hit = cluster_record(&l, &tuning, &cfg);
        prop_assert_eq!(first, hit);
        prop_assert!(hit.utilization.is_conserved(hit.cycles, groups as u64));
    }
}

/// A unique scratch directory under the system temp dir (process-id +
/// monotonic counter — no wall clock, no RNG).
fn test_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ola-simcache-test-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A warm disk store lets a second, cold in-memory cache serve the exact
/// bytes the first cache computed — without running the build closure.
#[test]
fn disk_tier_round_trips_without_recompute() {
    let dir = test_dir("tier");
    let store: Arc<dyn SimResultStore> = Arc::new(ArtifactStore::open(&dir).unwrap());

    let run = LayerRun {
        name: "conv1".into(),
        cycles: 123_456,
        energy: ola_energy::EnergyBreakdown {
            dram: 0.1,
            buffer: -0.0,
            local: 3.5e9,
            logic: 42.0,
        },
        utilization: Utilization {
            run_cycles: 100_000,
            skip_cycles: 3_456,
            idle_cycles: 20_000,
        },
        chunk_cycle_hist: vec![0, 5, 9, 1],
    };

    // First process: cold cache + empty store → build runs, write-through.
    let warm = SimCache::new();
    warm.set_store(Some(store.clone()));
    let first = warm.layer_run(0xFEED, || run.clone());
    assert_runs_bitwise_eq(&first, &run);
    let s = warm.stats();
    assert_eq!((s.run_misses, s.disk_hits, s.disk_misses), (1, 0, 1));

    // Second process: cold cache + warm store → record loads from disk,
    // the build closure must never run.
    let cold = SimCache::new();
    cold.set_store(Some(store));
    let replay = cold.layer_run(0xFEED, || panic!("warm store must satisfy the lookup"));
    assert_runs_bitwise_eq(&replay, &run);
    let s = cold.stats();
    assert_eq!((s.run_misses, s.disk_hits, s.disk_misses), (0, 1, 0));

    // Third request in the same process is a pure memory hit.
    let again = cold.layer_run(0xFEED, || panic!("resident entry must hit"));
    assert_runs_bitwise_eq(&again, &run);
    assert_eq!(cold.stats().run_hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Same round trip for event records, exercised through the accelerator-
/// level `cluster_record` keying path end to end: simulate once with a
/// store attached, then verify the record file exists and decodes to the
/// same result.
#[test]
fn event_records_persist_through_the_global_path() {
    let dir = test_dir("event");
    let artifact = Arc::new(ArtifactStore::open(&dir).unwrap());

    let cache = SimCache::new();
    cache.set_store(Some(artifact.clone() as Arc<dyn SimResultStore>));
    let rec = ola_sim::EventRecord {
        cycles: 999,
        utilization: Utilization {
            run_cycles: 500,
            skip_cycles: 100,
            idle_cycles: 399,
        },
        outlier_busy: 7,
    };
    let stored = cache.event_record(0xBEEF, || rec);
    assert_eq!(stored, rec);

    // The record is on disk under its fingerprint and model version.
    assert!(artifact.sim_event_path(0xBEEF).exists());
    assert_eq!(artifact.load_sim_event(0xBEEF).unwrap(), Some(rec));

    // A cold cache over the same store replays it without simulating.
    let cold = SimCache::new();
    cold.set_store(Some(artifact as Arc<dyn SimResultStore>));
    let replay = cold.event_record(0xBEEF, || panic!("warm store must satisfy the lookup"));
    assert_eq!(replay, rec);
    assert_eq!(cold.stats().disk_hits, 1);

    let _ = std::fs::remove_dir_all(&dir);
}
